package colsort

// Tests of the v1 API: Sorter.Sort(ctx, Source, Sink, ...Option).
//
// The acceptance bar: one Sort call reproduces byte-identical output and
// identical sim.Counters to the raw engine path each legacy entry point
// used; a cancelled context tears a running sort down with no goroutine or
// scratch-file leaks; a KeySpec with non-zero offset sorts on the real
// embedded field; and the new path's steady state stays allocation-lean.

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"colsort/internal/core"
	"colsort/internal/record"
	"colsort/internal/testutil"
)

// rawEngineRun executes the pre-v1 generated-input path — plan, fill via
// the generator, core.Run — exactly as the legacy SortGenerated did before
// it became a wrapper, so equivalence is pinned against the engine rather
// than against another wrapper of the same code.
func rawEngineRun(t *testing.T, s *Sorter, alg Algorithm, n int64, g record.Generator) *Result {
	t.Helper()
	pl, err := s.Plan(alg, n)
	if err != nil {
		t.Fatal(err)
	}
	input, err := pl.NewInput(s.e.m, g)
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	res, err := core.Run(context.Background(), pl, s.e.m, input, core.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	return &Result{Result: res, want: record.OfGenerated(g, n, s.e.cfg.RecordSize)}
}

func TestSortMatchesLegacyEngine(t *testing.T) {
	const n, p, mem, z = 1 << 14, 4, 1 << 10, 32
	gen := record.Uniform{Seed: 42}
	for _, alg := range []Algorithm{Threaded, Threaded4, Subblock, MColumn, Combined} {
		t.Run(alg.String(), func(t *testing.T) {
			legacy := rawEngineRun(t, newSorter(t, p, mem, z), alg, n, gen)
			defer legacy.Close()
			v1, err := newSorter(t, p, mem, z).Sort(context.Background(),
				Generate(gen, n), nil, WithAlgorithm(alg), WithPadding(PadNever))
			if err != nil {
				t.Fatal(err)
			}
			defer v1.Close()
			if err := v1.Verify(); err != nil {
				t.Fatal(err)
			}

			a, err := legacy.Output.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			b, err := v1.Output.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Data, b.Data) {
				t.Error("v1 Sort output differs from the legacy engine path")
			}
			if !reflect.DeepEqual(legacy.PassCounters, v1.PassCounters) {
				t.Errorf("v1 Sort counters differ:\nlegacy %+v\nv1     %+v",
					legacy.TotalCounters(), v1.TotalCounters())
			}
		})
	}
}

func TestSortHybridMatchesLegacyEngine(t *testing.T) {
	const n, p, mem, z, g = 1 << 12, 8, 1 << 9, 16, 2
	gen := record.Uniform{Seed: 9}

	s1 := newSorter(t, p, mem, z)
	pl, err := s1.PlanHybrid(g, n)
	if err != nil {
		t.Fatal(err)
	}
	input, err := pl.NewInput(s1.e.m, gen)
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	res, err := core.Run(context.Background(), pl, s1.e.m, input, core.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	legacy := &Result{Result: res, want: record.OfGenerated(gen, n, z)}
	defer legacy.Close()

	v1, err := newSorter(t, p, mem, z).Sort(context.Background(),
		Generate(gen, n), nil, WithHybridGroup(g))
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	if err := v1.Verify(); err != nil {
		t.Fatal(err)
	}
	a, _ := legacy.Output.Snapshot()
	b, _ := v1.Output.Snapshot()
	if !bytes.Equal(a.Data, b.Data) {
		t.Error("hybrid v1 output differs from the legacy engine path")
	}
	if !reflect.DeepEqual(legacy.PassCounters, v1.PassCounters) {
		t.Error("hybrid v1 counters differ from the legacy engine path")
	}
}

func newSorter(t *testing.T, p, mem, z int) *Sorter {
	t.Helper()
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSortStorePassthrough pins that FromStore with a plan-shaped store is
// consumed in place — input preserved, counters identical to the raw
// engine run on that store.
func TestSortStorePassthrough(t *testing.T) {
	const n, p, mem, z = 1 << 13, 4, 1 << 10, 16
	s := newSorter(t, p, mem, z)
	input, err := s.InputStore(Threaded, n)
	if err != nil {
		t.Fatal(err)
	}
	defer input.Close()
	if err := input.Fill(record.Dup{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	before, err := input.Checksum()
	if err != nil {
		t.Fatal(err)
	}

	res, err := s.Sort(context.Background(), FromStore(input), nil,
		WithAlgorithm(Threaded), WithPadding(PadNever))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	after, err := input.Checksum()
	if err != nil {
		t.Fatal(err)
	}
	if !after.Equal(before) {
		t.Error("Sort(FromStore) modified the caller's input store")
	}
}

// TestSortKeySpec is the acceptance check of the pluggable key schema: a
// non-power-of-two batch of records whose key lives at a non-zero offset,
// sorted descending on that field, emitted through a Sink in the original
// layout.
func TestSortKeySpec(t *testing.T) {
	const z, n = 32, 1000 // non-power-of-two: exercises padding under a KeySpec
	const off, width = 12, 4
	raw := make([]byte, n*z)
	rng := record.Uniform{Seed: 77}
	for i := 0; i < n; i++ {
		rng.Gen(raw[i*z:(i+1)*z], int64(i))
	}
	for _, order := range []Order{Ascending, Descending} {
		t.Run(order.String(), func(t *testing.T) {
			var out bytes.Buffer
			s := newSorter(t, 4, 1<<8, z)
			res, err := s.Sort(context.Background(), FromBytes(raw), ToWriter(&out),
				WithKeySpec(KeySpec{Offset: off, Width: width, Order: order}))
			if err != nil {
				t.Fatal(err)
			}
			defer res.Close()
			if res.RealRecords() != n {
				t.Fatalf("RealRecords = %d, want %d", res.RealRecords(), n)
			}
			got := out.Bytes()
			if len(got) != len(raw) {
				t.Fatalf("sink got %d bytes, want %d", len(got), len(raw))
			}
			field := func(b []byte, i int) uint32 {
				return binary.BigEndian.Uint32(b[i*z+off:])
			}
			for i := 1; i < n; i++ {
				prev, cur := field(got, i-1), field(got, i)
				if (order == Ascending && cur < prev) || (order == Descending && cur > prev) {
					t.Fatalf("record %d out of %v field order: %x after %x", i, order, cur, prev)
				}
			}
			// The emitted records are a permutation of the input.
			var a, b record.Checksum
			a.AddSlice(record.NewSlice(raw, z))
			b.AddSlice(record.NewSlice(got, z))
			if !a.Equal(b) {
				t.Error("sink output is not a permutation of the input")
			}
			// Cross-check against the straightforward reference sort.
			want := append([]byte(nil), raw...)
			recs := make([][]byte, n)
			for i := range recs {
				recs[i] = want[i*z : (i+1)*z]
			}
			sort.SliceStable(recs, func(i, j int) bool {
				a, b := binary.BigEndian.Uint32(recs[i][off:]), binary.BigEndian.Uint32(recs[j][off:])
				if order == Descending {
					return a > b
				}
				return a < b
			})
			for i := 1; i < n; i++ {
				if field(got, i) != binary.BigEndian.Uint32(recs[i][off:]) {
					t.Fatalf("record %d field %x, reference says %x", i,
						field(got, i), binary.BigEndian.Uint32(recs[i][off:]))
				}
			}
		})
	}
}

// TestSortFromReader streams input from an io.Reader and back out through
// an io.Writer: the full v1 streaming loop on a plain byte pipe.
func TestSortFromReader(t *testing.T) {
	const z, n = 16, 1 << 12
	raw := make([]byte, n*z)
	gen := record.Reverse{Seed: 5}
	for i := 0; i < n; i++ {
		gen.Gen(raw[i*z:(i+1)*z], int64(i))
	}
	var out bytes.Buffer
	s := newSorter(t, 4, 1<<10, z)
	res, err := s.Sort(context.Background(), FromReader(bytes.NewReader(raw), n), ToWriter(&out))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	sorted := record.NewSlice(out.Bytes(), z)
	if !sorted.IsSorted() {
		t.Error("FromReader output not sorted")
	}
	if sorted.Len() != n {
		t.Errorf("FromReader output has %d records, want %d", sorted.Len(), n)
	}
	// A short stream must fail cleanly, not hang or fabricate records.
	if _, err := s.Sort(context.Background(), FromReader(bytes.NewReader(raw[:z*10]), n), nil); err == nil {
		t.Error("short stream accepted")
	}
}

// TestSortCancelTearsDown is the cancellation acceptance test: a mid-pass
// cancel of a file-backed async run returns promptly with context.Canceled,
// leaves no goroutines behind, and removes every scratch file under
// Config.Dir (both pinned by the shared testutil leak checker).
func TestSortCancelTearsDown(t *testing.T) {
	dir := t.TempDir()
	testutil.CheckLeaks(t, dir)
	s, err := New(Config{Procs: 4, MemPerProc: 1 << 12, RecordSize: 32, Dir: dir, Async: true})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	start := time.Now()
	res, err := s.Sort(ctx, Generate(record.Uniform{Seed: 1}, 1<<16), nil,
		WithAlgorithm(Threaded),
		WithProgress(func(ev Progress) {
			// Cancel in the middle of pass 2: the fabric, the pipelines and
			// the async disk workers are all live at this point.
			if ev.Pass == 2 && ev.Round == 1 {
				once.Do(cancel)
			}
		}))
	elapsed := time.Since(start)
	if err == nil {
		res.Close()
		t.Fatal("cancelled Sort returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want errors.Is(err, context.Canceled)", err)
	}
	if elapsed > 30*time.Second {
		t.Errorf("cancel took %v to return", elapsed)
	}

	// The sorter remains usable after a cancelled run.
	ok, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 1}, 1<<12), nil)
	if err != nil {
		t.Fatalf("Sort after cancel: %v", err)
	}
	if err := ok.Verify(); err != nil {
		t.Error(err)
	}
	ok.Close()
}

// TestSortCancelDuringIngest covers the other cancellation window: a
// context that dies while records are still streaming onto the disks.
func TestSortCancelDuringIngest(t *testing.T) {
	dir := t.TempDir()
	testutil.CheckLeaks(t, dir)
	s, err := New(Config{Procs: 4, MemPerProc: 1 << 12, RecordSize: 32, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead: ingest must notice before the engine starts
	if _, err := s.Sort(ctx, Generate(record.Uniform{Seed: 1}, 1<<15), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSortProgressEvents pins the progress contract: for every pass,
// a starting event (Round 0) plus one event per completed round, ending at
// Round == Rounds, in order.
func TestSortProgressEvents(t *testing.T) {
	const n, p, mem, z = 1 << 14, 4, 1 << 10, 16 // r=1024, s=16: 4 rounds/pass
	var events []Progress
	s := newSorter(t, p, mem, z)
	res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 2}, n), nil,
		WithAlgorithm(Subblock),
		WithProgress(func(ev Progress) { events = append(events, ev) }))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()

	rounds := res.Plan.Rounds()
	passes := res.Plan.Alg.Passes()
	if want := passes * (rounds + 1); len(events) != want {
		t.Fatalf("got %d progress events, want %d (%d passes × %d rounds)", len(events), want, passes, rounds)
	}
	i := 0
	for pass := 1; pass <= passes; pass++ {
		for round := 0; round <= rounds; round++ {
			ev := events[i]
			if ev.Pass != pass || ev.Round != round || ev.Passes != passes || ev.Rounds != rounds {
				t.Fatalf("event %d = %+v, want pass %d/%d round %d/%d", i, ev, pass, passes, round, rounds)
			}
			i++
		}
	}
}

// TestPlanPaddedErrorNamesAlgorithmAndRange: "no power-of-two padding is
// sortable" failures must carry which algorithm and which Ns were tried,
// as structured PaddingError fields rather than prose to parse.
func TestPlanPaddedErrorNamesAlgorithmAndRange(t *testing.T) {
	s := newSorter(t, 2, 8, 16) // tiny memory: nothing big is plannable
	_, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 1}, 1<<20), nil,
		WithAlgorithm(Threaded))
	if err == nil {
		t.Fatal("expected a planning error")
	}
	var pe *PaddingError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PaddingError", err)
	}
	if pe.Alg != Threaded || pe.Records != 1<<20 {
		t.Errorf("PaddingError = %+v, want Alg=threaded Records=%d", pe, 1<<20)
	}
	if pe.First < 1<<20 || pe.Last < pe.First || pe.Err == nil {
		t.Errorf("PaddingError range/cause inconsistent: %+v", pe)
	}
}

// TestSortSteadyStateAllocs pins the allocation discipline of the v1 path:
// repeated Sorts on one warm Sorter must not allocate per record — the
// whole call stays within a per-call budget two orders of magnitude below
// the record count, and within the raw engine path's own footprint plus a
// small constant for the Source/Option plumbing.
func TestSortSteadyStateAllocs(t *testing.T) {
	const n, p, mem, z = 1 << 14, 4, 1 << 10, 32
	gen := record.Uniform{Seed: 4}

	v1 := newSorter(t, p, mem, z)
	runV1 := func() {
		res, err := v1.Sort(context.Background(), Generate(gen, n), nil,
			WithAlgorithm(Threaded), WithPadding(PadNever))
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
	}
	runV1() // warm pools, header free lists, scratch
	v1Allocs := testing.AllocsPerRun(3, runV1)

	legacy := newSorter(t, p, mem, z)
	runLegacy := func() {
		pl, err := legacy.Plan(Threaded, n)
		if err != nil {
			t.Fatal(err)
		}
		input, err := pl.NewInput(legacy.e.m, gen)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(context.Background(), pl, legacy.e.m, input, core.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		input.Close()
		res.Output.Close()
	}
	runLegacy()
	legacyAllocs := testing.AllocsPerRun(3, runLegacy)

	// Both paths pay a constant per-sort setup (stores, fabric, pipeline
	// goroutines) of around a thousand allocations; what must NOT appear
	// is a per-record term.
	if v1Allocs > float64(n)/8 {
		t.Errorf("v1 Sort allocates %.0f times for %d records — a per-record term crept in", v1Allocs, n)
	}
	// The checksum-during-fill replaces legacy's OfGenerated scan, and the
	// Source/Option plumbing is a handful of headers: allow a small
	// constant, never a per-record factor.
	if v1Allocs > legacyAllocs+100 {
		t.Errorf("v1 Sort allocates %.0f/run vs legacy engine %.0f/run", v1Allocs, legacyAllocs)
	}
}

// TestIngestReaderAllocs pins that the streaming ingest inner loop —
// chunked reads, codec encode, checksum — performs no per-record
// allocation.
func TestIngestReaderAllocs(t *testing.T) {
	const z = 64
	raw := make([]byte, 512*z)
	codec, err := KeySpec{Offset: 16, Width: 8}.Compile(z)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, z)
	var want record.Checksum
	src := bytes.NewReader(raw)
	rd := newChunkedReader(src, nil)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := src.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		rd.br.Reset(src)
		for i := 0; i < 512; i++ {
			if err := rd.ReadRecord(rec); err != nil {
				t.Fatal(err)
			}
			codec.EncodeRecord(rec)
			want.Add(rec)
		}
	})
	if allocs != 0 {
		t.Errorf("ingest loop allocates %.1f per 512 records, want 0", allocs)
	}
}

// TestOptionOrderLastAlgorithmWins: a later WithAlgorithm must override an
// earlier WithHybridGroup (options assembled conditionally must not leave
// sticky hybrid state behind).
func TestOptionOrderLastAlgorithmWins(t *testing.T) {
	s := newSorter(t, 4, 1<<10, 16)
	res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: 8}, 1<<13), nil,
		WithHybridGroup(2), WithAlgorithm(MColumn))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Plan.Alg != MColumn {
		t.Fatalf("ran %v, want m-columnsort (the later WithAlgorithm)", res.Plan.Alg)
	}
}

// TestSortFileStillWorks pins the end-to-end "sort a file" path — FromFile
// through ToFile — that the removed SortFile wrapper used to package.
func TestSortFileStillWorks(t *testing.T) {
	const z, n = 32, 3000
	dir := t.TempDir()
	in := filepath.Join(dir, "in.dat")
	out := filepath.Join(dir, "out.dat")
	raw := make([]byte, n*z)
	gen := record.Zipf{Seed: 11}
	for i := 0; i < n; i++ {
		gen.Gen(raw[i*z:(i+1)*z], int64(i))
	}
	if err := os.WriteFile(in, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Procs: 4, MemPerProc: 1 << 10, RecordSize: z, Dir: filepath.Join(dir, "scratch"), Async: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Sort(context.Background(), FromFile(in), ToFile(out), WithAlgorithm(Threaded))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	sorted := record.NewSlice(got, z)
	if sorted.Len() != n {
		t.Fatalf("output has %d records, want %d", sorted.Len(), n)
	}
	if !sorted.IsSorted() {
		t.Error("SortFile output not sorted")
	}
	var a, b record.Checksum
	a.AddSlice(record.NewSlice(raw, z))
	b.AddSlice(sorted)
	if !a.Equal(b) {
		t.Error("SortFile output is not a permutation of the input")
	}
}
