package colsort

// The run manifest: the write-ahead log that makes a checkpointed
// hierarchical sort crash-safe. It is a JSON-lines file (manifest.wal) in
// the job's checkpoint directory, appended and fsync'd at each durability
// point:
//
//	begin        the resolved job parameters (n, record size, run plan,
//	             fan-in, formation, key spec, caps) — written once, first
//	run          one verified spilled run: its file path, record count,
//	             direction and CRC32C sidecar, plus (fixed-batch formation)
//	             the cumulative source records consumed and their multiset
//	             checksum — appended only AFTER the run's bytes are fsync'd
//	ingest_done  run formation complete; carries the full ingest multiset
//	             checksum the final merge must reproduce
//	merged       one intermediate merge: the output run (same fields as
//	             "run") and the ids of the inputs it consumed — appended
//	             after the output is fsync'd and BEFORE the input files are
//	             removed, so a crash between the two only leaves orphans
//	done         the sort completed and the sink holds the verified output
//
// Replay (readManifest) folds the log into the live run set: every "run"
// and "merged" output not consumed by a later "merged" entry. A torn final
// line — the crash hit mid-append — is ignored: the entry's durability
// point was not reached, so whatever it described is redone or swept as an
// orphan. See DESIGN.md §13 for the full durability contract.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"colsort/internal/merge"
	"colsort/internal/pdm"
	"colsort/internal/record"
)

// manifestName is the WAL's file name inside the checkpoint directory.
const manifestName = "manifest.wal"

// ckptRunPrefix leads every spill file a checkpointed job creates in its
// checkpoint directory, so cleanup and orphan GC can identify the job's
// files without touching anything else living there.
const ckptRunPrefix = "ckpt-"

// manifestRun describes one durable spilled run.
type manifestRun struct {
	ID         int      `json:"id"`
	Path       string   `json:"path"`
	Records    int64    `json:"records"`
	Descending bool     `json:"descending,omitempty"`
	FrameBytes int      `json:"frame_bytes"`
	CRCs       []uint32 `json:"crcs"`
}

// manifestEntry is one WAL line; Type selects which fields are meaningful.
type manifestEntry struct {
	Type string `json:"type"`

	// begin
	N          int64    `json:"n,omitempty"`
	RecordSize int      `json:"record_size,omitempty"`
	RunRecords int64    `json:"run_records,omitempty"`
	FanIn      int      `json:"fan_in,omitempty"`
	Formation  string   `json:"formation,omitempty"`
	Alg        int      `json:"alg,omitempty"`
	AlgName    string   `json:"alg_name,omitempty"` // display only; Alg is parsed
	KeySpec    *KeySpec `json:"key_spec,omitempty"`
	MaxMemory  int64    `json:"max_memory,omitempty"`

	// run and merged
	Run *manifestRun `json:"run,omitempty"`
	// run (fixed-batch formation): cumulative source records consumed once
	// this run was durable, and their multiset checksum — what a
	// formation-phase resume skips and verifies.
	Consumed int64 `json:"consumed,omitempty"`
	// run (cumulative), ingest_done (final): the ingest multiset checksum.
	Want *record.Checksum `json:"want,omitempty"`
	// merged: ids of the input runs the output consumed.
	Inputs []int `json:"inputs,omitempty"`
}

// manifestLog is the append side of the WAL. A nil *manifestLog is a valid
// no-op logger, so the hierarchical path calls it unconditionally.
type manifestLog struct {
	dir    string
	f      *os.File
	runSeq int
}

// openManifestLog opens (creating the directory if needed) the WAL for
// appending. firstID seeds the run-id sequence — a resumed job continues
// numbering after the ids already in the log.
func openManifestLog(dir string, firstID int) (*manifestLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("colsort: checkpoint dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, manifestName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("colsort: checkpoint manifest: %w", err)
	}
	return &manifestLog{dir: dir, f: f, runSeq: firstID}, nil
}

// append writes one entry as a JSON line and fsyncs it — the entry is
// durable when append returns, not before.
func (l *manifestLog) append(e manifestEntry) error {
	if l == nil {
		return nil
	}
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("colsort: encoding manifest entry: %w", err)
	}
	data = append(data, '\n')
	if _, err := l.f.Write(data); err != nil {
		return fmt.Errorf("colsort: appending manifest entry: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("colsort: syncing manifest: %w", err)
	}
	return nil
}

// logBegin records the job's resolved parameters.
func (l *manifestLog) logBegin(o sortOptions, recordSize int, n, runRecords int64, fanIn int) error {
	if l == nil {
		return nil
	}
	e := manifestEntry{
		Type:       "begin",
		N:          n,
		RecordSize: recordSize,
		RunRecords: runRecords,
		FanIn:      fanIn,
		Formation:  o.formation.String(),
		Alg:        int(o.alg),
		AlgName:    o.alg.String(),
		MaxMemory:  o.maxMemory,
	}
	if o.keySpec != (KeySpec{}) {
		ks := o.keySpec
		e.KeySpec = &ks
	}
	return l.append(e)
}

// describeRun captures a spilled run's durable identity. The run's disk
// must already be fsync'd (pdm.SyncDisk) — the manifest claims durability,
// it does not create it.
func describeRun(id int, r *merge.Run) *manifestRun {
	return &manifestRun{
		ID:         id,
		Path:       pdm.DiskPath(r.Disk),
		Records:    r.Records,
		Descending: r.Descending,
		FrameBytes: r.FrameBytes,
		CRCs:       r.CRCs(),
	}
}

// logRun records one verified formation run, returning its manifest id.
// consumed/want carry the fixed-batch cumulative ingest position; zero
// values under replacement selection (whose runs don't cover a source
// prefix — see DESIGN.md §13).
func (l *manifestLog) logRun(r *merge.Run, consumed int64, want record.Checksum) (int, error) {
	if l == nil {
		return 0, nil
	}
	l.runSeq++
	id := l.runSeq
	e := manifestEntry{Type: "run", Run: describeRun(id, r), Consumed: consumed}
	if consumed > 0 {
		w := want
		e.Want = &w
	}
	return id, l.append(e)
}

// logIngestDone marks run formation complete with the full ingest checksum.
func (l *manifestLog) logIngestDone(want record.Checksum) error {
	if l == nil {
		return nil
	}
	w := want
	return l.append(manifestEntry{Type: "ingest_done", Want: &w})
}

// logMerged records one intermediate merge output and the input ids it
// consumed, returning the output's manifest id. Call it after the output
// is fsync'd and before the input files are removed.
func (l *manifestLog) logMerged(out *merge.Run, inputs []int) (int, error) {
	if l == nil {
		return 0, nil
	}
	l.runSeq++
	id := l.runSeq
	return id, l.append(manifestEntry{Type: "merged", Run: describeRun(id, out), Inputs: append([]int(nil), inputs...)})
}

// complete writes the done entry, closes the WAL, and best-effort removes
// the checkpoint directory's contents — the sort succeeded, so the
// checkpoint state has served its purpose. Cleanup failures are swallowed:
// the output is already delivered and a leftover manifest recording "done"
// is refused by Resume anyway.
func (l *manifestLog) complete() {
	if l == nil {
		return
	}
	_ = l.append(manifestEntry{Type: "done"})
	_ = l.f.Close()
	if ents, err := os.ReadDir(l.dir); err == nil {
		for _, de := range ents {
			if !de.IsDir() && (strings.HasPrefix(de.Name(), ckptRunPrefix) || de.Name() == manifestName) {
				_ = os.Remove(filepath.Join(l.dir, de.Name()))
			}
		}
	}
	_ = os.Remove(l.dir) // only if nothing else lives there
}

// close releases the WAL file handle without cleanup — the failure path,
// which must leave every durable byte in place for a later Resume.
func (l *manifestLog) close() {
	if l == nil {
		return
	}
	_ = l.f.Close()
}

// manifestState is the fold of one WAL replay.
type manifestState struct {
	begin      manifestEntry
	live       []*manifestRun // runs not consumed by a later merged entry, log order
	consumed   int64          // fixed-batch: source records covered by durable runs
	cumWant    record.Checksum
	ingestDone bool
	finalWant  record.Checksum
	done       bool
	maxID      int
	runsLogged int // formation runs recorded (durable batches)
}

// readManifest replays the WAL at dir. A torn final line is ignored; any
// earlier malformed line fails the replay (the file is corrupt, not merely
// truncated by a crash).
func readManifest(dir string) (*manifestState, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("colsort: no resumable manifest at %s: %w", dir, err)
	}
	defer f.Close()

	var lines []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 64<<20) // CRC sidecars make long lines
	for sc.Scan() {
		if s := strings.TrimSpace(sc.Text()); s != "" {
			lines = append(lines, s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("colsort: reading manifest: %w", err)
	}

	st := &manifestState{}
	liveByID := make(map[int]*manifestRun)
	order := []int{}
	haveBegin := false
	for i, line := range lines {
		var e manifestEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			if i == len(lines)-1 {
				break // torn final append: the entry never became durable
			}
			return nil, fmt.Errorf("colsort: corrupt manifest at %s line %d: %w", dir, i+1, err)
		}
		switch e.Type {
		case "begin":
			if haveBegin {
				return nil, fmt.Errorf("colsort: corrupt manifest at %s: duplicate begin entry", dir)
			}
			st.begin, haveBegin = e, true
		case "run":
			if e.Run == nil {
				return nil, fmt.Errorf("colsort: corrupt manifest at %s: run entry without run", dir)
			}
			liveByID[e.Run.ID] = e.Run
			order = append(order, e.Run.ID)
			if e.Run.ID > st.maxID {
				st.maxID = e.Run.ID
			}
			st.runsLogged++
			if e.Consumed > 0 {
				st.consumed = e.Consumed
				if e.Want != nil {
					st.cumWant = *e.Want
				}
			}
		case "ingest_done":
			st.ingestDone = true
			if e.Want != nil {
				st.finalWant = *e.Want
			}
		case "merged":
			if e.Run == nil {
				return nil, fmt.Errorf("colsort: corrupt manifest at %s: merged entry without run", dir)
			}
			for _, id := range e.Inputs {
				delete(liveByID, id)
			}
			liveByID[e.Run.ID] = e.Run
			order = append(order, e.Run.ID)
			if e.Run.ID > st.maxID {
				st.maxID = e.Run.ID
			}
		case "done":
			st.done = true
		default:
			return nil, fmt.Errorf("colsort: corrupt manifest at %s: unknown entry type %q", dir, e.Type)
		}
	}
	if !haveBegin {
		return nil, fmt.Errorf("colsort: manifest at %s has no begin entry; nothing to resume", dir)
	}
	for _, id := range order {
		if r, ok := liveByID[id]; ok {
			st.live = append(st.live, r)
			delete(liveByID, id) // a merged output re-listing an id keeps one copy
		}
	}
	return st, nil
}

// sweepOrphanRuns removes every checkpoint spill file in dir that no live
// manifest run references — the half-written run or merge output a crash
// left behind, and the consumed inputs whose removal the crash interrupted.
// It returns how many files were removed.
func sweepOrphanRuns(dir string, live []*manifestRun) int {
	referenced := make(map[string]bool, len(live))
	for _, r := range live {
		referenced[filepath.Base(r.Path)] = true
	}
	removed := 0
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasPrefix(name, ckptRunPrefix) || referenced[name] {
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			removed++
		}
	}
	return removed
}
