package colsort

import (
	"context"
	"fmt"

	"colsort/internal/core"
	"colsort/internal/pdm"
	"colsort/internal/record"
	"colsort/internal/sim"
)

// Sort submits one sorting job to the engine: the records of src are
// sorted into dst under ctx.
//
//	res, err := engine.Sort(ctx, colsort.FromFile("in.dat"), colsort.ToFile("out.dat"),
//	        colsort.WithAlgorithm(colsort.Subblock),
//	        colsort.WithKeySpec(colsort.KeySpec{Offset: 16, Width: 8}))
//
// The input is ingested once, in index order, onto the simulated cluster's
// disks (never more than one column portion in memory), sorted by the
// configured algorithm, verified (global sortedness in PDM column-major
// order plus multiset preservation) and — when dst is non-nil — streamed
// into the sink with any padding trimmed and any KeySpec normalization
// undone. A nil dst keeps the sorted data in Result.Output only.
//
// Sort is unbounded in n: when the record count exceeds the selected
// algorithm's problem-size bound (or a WithMaxMemory cap), the input is
// transparently split into maximal bounded runs, each sorted on one
// persistent cluster fabric, and the runs are combined by a loser-tree
// k-way merge (WithMergeFanIn) streaming straight into dst with prefetch
// on the run reads, write-behind on the output, and in-stream verification
// — see Result.Merge and DESIGN.md §7. This path requires a non-nil dst
// (the merged output only exists as a stream), the default PadAuto policy,
// and a non-hybrid algorithm.
//
// Concurrent Sort calls are admitted against the engine's TotalMemory
// budget: each job's ask is its WithMaxMemory cap when given, otherwise
// its run plan's record bytes. A job that does not fit waits FIFO for
// earlier jobs to release their leases — cancel ctx to stop waiting, or
// pass WithNoWait to fail fast with ErrBusy. Admitted jobs run fully in
// parallel: they share the engine's warm buffer pools and backend but
// keep their own fault counters, progress, cancellation and scratch
// namespace, so each result is byte-identical to a solo run.
//
// Cancelling ctx (or exceeding its deadline) tears the job down: all P
// processor goroutines, the pipeline stages between them and the
// asynchronous disk workers unwind, write-behind queues drain, scratch
// files are removed, and Sort returns an error satisfying
// errors.Is(err, ctx.Err()) without leaking goroutines or files.
//
// The returned Result carries the exact operation counts and the cost
// model; the caller owns Close.
func (e *Engine) Sort(ctx context.Context, src Source, dst Sink, opts ...Option) (*Result, error) {
	o := sortOptions{alg: Threaded, padding: PadAuto}
	for _, opt := range opts {
		opt(&o)
	}
	if src == nil {
		return nil, fmt.Errorf("colsort: nil Source")
	}
	if o.deadline > 0 {
		// The deadline clock starts here — admission waiting included — so
		// a queued job cannot outlive its budget before doing any work.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.deadline)
		defer cancel()
	}
	if o.maxMemory < 0 {
		return nil, fmt.Errorf("colsort: WithMaxMemory(%d): the cap must be ≥ 0", o.maxMemory)
	}
	if o.fanIn < 0 || o.fanIn == 1 {
		return nil, fmt.Errorf("colsort: WithMergeFanIn(%d): the fan-in must be ≥ 2", o.fanIn)
	}
	codec, err := o.keySpec.Compile(e.cfg.RecordSize)
	if err != nil {
		return nil, fmt.Errorf("colsort: %w", err)
	}
	n, rd, err := src.Open(e.cfg.RecordSize)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	if n < 1 {
		return nil, fmt.Errorf("colsort: cannot sort %d records", n)
	}
	pl, plErr := e.planOpts(o, n)
	hier, err := e.wantHierarchical(o, pl, plErr)
	if err != nil {
		return nil, err
	}

	// Size the job's ask BEFORE admission: the caller's declared cap when
	// given, otherwise the record bytes of the single run this job will
	// execute. Plan-level failures (unplannable count, hierarchical sort
	// without a Sink) surface here, before the job can occupy budget.
	var runPl core.Plan
	var ask int64
	if hier {
		if dst == nil {
			// Wrap BOTH sentinels: ErrSinkRequired names what is missing,
			// and callers branching on ErrTooLarge (the legacy above-bound
			// failure mode) must keep matching when the only thing missing
			// is a Sink.
			return nil, fmt.Errorf("%w: %d records exceed the single-run bound (%w) and must stream through the hierarchical merge; pass a non-nil Sink (Discard() drops the output)", ErrSinkRequired, n, core.ErrTooLarge)
		}
		if runPl, err = e.planRun(o); err != nil {
			return nil, err
		}
		ask = runPl.N * int64(runPl.Z)
	} else {
		if plErr != nil {
			return nil, plErr
		}
		ask = pl.N * int64(pl.Z)
	}
	if o.maxMemory > 0 {
		ask = o.maxMemory
	}

	l, err := e.admit(ctx, ask, o.noWait)
	if err != nil {
		return nil, err
	}
	defer l.release()

	j := e.newJob(ctx, o)
	res, err := j.run(ctx, src, rd, dst, o, codec, n, pl, runPl, hier)
	faults := j.faultStats()
	if res != nil {
		res.Faults = faults
		res.JobID = j.id
	}
	e.finishJob(res, faults, err)
	return res, err
}

// run executes one admitted job: the hierarchical runs-plus-merge path
// when hier is set, the single-run engine path otherwise.
func (j *job) run(ctx context.Context, src Source, rd RecordReader, dst Sink, o sortOptions, codec record.KeyCodec, n int64, pl, runPl core.Plan, hier bool) (*Result, error) {
	if hier {
		return j.sortHierarchical(ctx, rd, dst, o, codec, n, runPl, nil)
	}

	// An existing store of exactly the planned shape under the native key
	// is consumed in place — no ingest copy.
	input, ownInput, want, err := ingest(ctx, j.m, src, rd, pl, codec, n)
	if err != nil {
		return nil, err
	}
	res, err := core.Run(ctx, pl, j.m, input, core.Hooks{Progress: o.progress})
	if ownInput {
		input.Close()
	}
	if err != nil {
		return nil, err
	}
	out := &Result{Result: res, want: want, codec: codec}
	if n < pl.N {
		out.realN = n
	}
	if dst != nil {
		// Verify BEFORE emitting: a failed sort must never hand the sink a
		// plausible-looking output.
		if err := out.Verify(); err != nil {
			out.Close()
			return nil, fmt.Errorf("colsort: refusing to emit output: %w", err)
		}
		if err := out.drainTo(ctx, dst); err != nil {
			out.Close()
			return nil, err
		}
	}
	return out, nil
}

// planOpts turns the options into a validated plan for n records.
func (e *Engine) planOpts(o sortOptions, n int64) (core.Plan, error) {
	if o.group > 0 {
		// Hybrid group columnsort: padding is not supported (the group size
		// fixes the shape), so the count must be directly plannable.
		return e.PlanHybrid(o.group, n)
	}
	if o.padding == PadNever {
		return e.Plan(o.alg, n)
	}
	return e.planPadded(o.alg, n)
}

// ingest materializes the plan's input store on machine m: either the
// source's own store consumed in place (ownInput = false), or a fresh
// store filled from the source's record stream (ownInput = true). want is
// the multiset checksum of the real records in the engine's normalized key
// space.
func ingest(ctx context.Context, m pdm.Machine, src Source, rd RecordReader, pl core.Plan, codec record.KeyCodec, n int64) (input *pdm.Store, ownInput bool, want record.Checksum, err error) {
	if ss, ok := src.(*storeSource); ok && codec.Identity() && n == pl.N && storeMatchesPlan(ss.st, pl) {
		want, err = ss.st.Checksum()
		return ss.st, false, want, err
	}
	input, err = pl.NewStore(m)
	if err != nil {
		return nil, false, want, err
	}
	want, err = fillStore(ctx, input, rd, codec, n)
	if err != nil {
		input.Close()
		return nil, false, want, err
	}
	return input, true, want, nil
}

// storeMatchesPlan mirrors core.Run's input-shape check.
func storeMatchesPlan(st *pdm.Store, pl core.Plan) bool {
	return st.R == pl.R && st.S == pl.S && st.RecSize == pl.Z && st.P == pl.P &&
		st.Layout == pl.Layout && (pl.Layout != pdm.GroupBlocked || st.G == pl.Group)
}

// fillStore streams the source's records into the store in global
// column-major index order (the order Store.Fill assigns), normalizing each
// record through the codec, folding the real records into the returned
// checksum, and padding any remainder with all-0xFF records — which are
// maximal in the normalized space, so they sort to the end for every
// KeySpec.
func fillStore(ctx context.Context, st *pdm.Store, rd RecordReader, codec record.KeyCodec, n int64) (record.Checksum, error) {
	var cnt sim.Counters
	var want record.Checksum
	var buf record.Slice
	var idx int64
	for j := 0; j < st.S; j++ {
		for p := 0; p < st.P; p++ {
			lo, hi := st.OwnedRows(p, j)
			if lo == hi {
				continue
			}
			if err := ctx.Err(); err != nil {
				return want, err
			}
			if buf.Size == 0 || buf.Len() < hi-lo {
				buf = record.Make(hi-lo, st.RecSize)
			}
			chunk := buf.Sub(0, hi-lo)
			for i := 0; i < chunk.Len(); i++ {
				rec := chunk.Record(i)
				if idx < n {
					if err := rd.ReadRecord(rec); err != nil {
						return want, fmt.Errorf("colsort: input record %d: %w", idx, err)
					}
					codec.EncodeRecord(rec)
					want.Add(rec)
				} else {
					for k := range rec {
						rec[k] = 0xff
					}
				}
				idx++
			}
			if err := st.WriteRows(&cnt, p, j, lo, chunk); err != nil {
				return want, err
			}
		}
	}
	for p := 0; p < st.P; p++ {
		if err := st.Flush(p); err != nil {
			return want, err
		}
	}
	return want, nil
}

// drainTo streams the result's real records into the sink, decoding each
// chunk back to the caller's byte layout. Each owned row segment is
// prefetched one step ahead, so an async-backed store overlaps the sink
// writes with its disk service time.
func (r *Result) drainTo(ctx context.Context, dst Sink) error {
	if r.Output == nil {
		return fmt.Errorf("colsort: hierarchical result holds no output store: the sorted records were already streamed to the Sort call's Sink")
	}
	w, err := dst.Open(r.Output.RecSize)
	if err != nil {
		return err
	}
	err = scanRealPrefix(ctx, r.Output, r.RealRecords(), func(chunk record.Slice) error {
		r.codec.Decode(chunk)
		return w.Write(chunk)
	})
	if err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// scanRealPrefix streams the real (non-pad) prefix of a sorted store in
// global column-major order, invoking emit with successive record chunks.
// The pad tail is neither read nor prefetched (ErrStopScan), and each owned
// segment is prefetched one step ahead by ScanSegments. Shared by the sink
// egress (drainTo) and the hierarchical run spill (spillRun).
func scanRealPrefix(ctx context.Context, st *pdm.Store, real int64, emit func(record.Slice) error) error {
	var cnt sim.Counters
	buf := record.Make(st.R, st.RecSize)
	remaining := real
	return st.ScanSegments(func(p, j, lo, hi int) error {
		if remaining <= 0 {
			return pdm.ErrStopScan
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		chunk := buf.Sub(0, hi-lo)
		if err := st.ReadRows(&cnt, p, j, lo, chunk); err != nil {
			return err
		}
		recs := int64(chunk.Len())
		if recs > remaining {
			recs = remaining
		}
		if err := emit(chunk.Sub(0, int(recs))); err != nil {
			return err
		}
		remaining -= recs
		return nil
	})
}
