package colsort

// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md §4 for the experiment index). Each benchmark runs the REAL
// algorithms on the simulated cluster at laptop scale and reports, besides
// wall-clock time, the calibrated Beowulf-2003 estimate ("est-s") whose
// paper-scale counterpart appears in EXPERIMENTS.md. Shapes — who wins, by
// what factor — are the reproduction targets, not absolute times.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"colsort/internal/bounds"
	"colsort/internal/cluster"
	"colsort/internal/figure2"
	"colsort/internal/incore"
	"colsort/internal/record"
	"colsort/internal/sim"
	"colsort/internal/sortalg"
)

// benchSort runs one full out-of-core sort per iteration and reports the
// modeled Beowulf seconds alongside the measured wall time.
func benchSort(b *testing.B, alg Algorithm, n int64, p, mem, z int) {
	b.Helper()
	s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Plan(alg, n); err != nil {
		b.Skipf("ineligible: %v", err)
	}
	var est float64
	b.SetBytes(n * int64(z))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: uint64(i)}, n), nil,
			WithAlgorithm(alg), WithPadding(PadNever))
		if err != nil {
			b.Fatal(err)
		}
		est = res.EstimateBeowulf().Total
		res.Close()
	}
	b.ReportMetric(est, "est-s")
}

// BenchmarkFigure2 is experiment E1: the three algorithms plus baselines
// at two buffer sizes. The per-processor data volume is fixed, mirroring
// the paper's GB-per-processor normalization.
func BenchmarkFigure2(b *testing.B) {
	const z = 64
	for _, alg := range []Algorithm{Threaded, Subblock, MColumn, BaselineIO3, BaselineIO4} {
		for _, mem := range []int{1 << 12, 1 << 13} { // the 2^24/2^25-byte knob, scaled
			// s = 16 columns for the column-owned algorithms (s = 4 for
			// M-columnsort, whose column height is mem·P).
			n := int64(mem) * 16
			b.Run(fmt.Sprintf("%v/buf=%d", alg, mem*z), func(b *testing.B) {
				benchSort(b, alg, n, 4, mem, z)
			})
		}
	}
}

// BenchmarkE5SubblockComm measures the subblock pass across the P/√s
// regimes of Section 3's properties 1–2.
func BenchmarkE5SubblockComm(b *testing.B) {
	for _, cfg := range []struct{ p, s int }{{2, 16}, {4, 16}, {8, 16}, {16, 16}} {
		r := 4096
		n := int64(r) * int64(cfg.s)
		b.Run(fmt.Sprintf("P=%d/s=%d", cfg.p, cfg.s), func(b *testing.B) {
			benchSort(b, Subblock, n, cfg.p, r, 16)
		})
	}
}

// BenchmarkE6InCore compares the three distributed in-core sorts at a
// sort-stage-representative size (experiment E6). Each rank keeps a buffer
// pool and sort scratch across iterations, as the M-columnsort pipeline
// does, so the numbers reflect the steady-state hot path.
func BenchmarkE6InCore(b *testing.B) {
	const p, n, z = 8, 1 << 14, 64
	mkSorters := func(pools []*record.Pool, scratches []sortalg.Scratch) map[string]func(rank int) incore.Sorter {
		return map[string]func(rank int) incore.Sorter{
			incore.Columnsort{}.Name(): func(rank int) incore.Sorter {
				return incore.Columnsort{Pool: pools[rank], Scratch: &scratches[rank]}
			},
			incore.Radix{}.Name(): func(rank int) incore.Sorter {
				return incore.Radix{Pool: pools[rank]}
			},
			incore.Bitonic{}.Name(): func(rank int) incore.Sorter {
				return incore.Bitonic{Pool: pools[rank], Scratch: &scratches[rank]}
			},
		}
	}
	for _, name := range []string{incore.Columnsort{}.Name(), incore.Radix{}.Name(), incore.Bitonic{}.Name()} {
		b.Run(name, func(b *testing.B) {
			pools := make([]*record.Pool, p)
			for i := range pools {
				pools[i] = record.NewPool()
			}
			scratches := make([]sortalg.Scratch, p)
			mk := mkSorters(pools, scratches)[name]
			b.SetBytes(int64(p) * int64(n) * int64(z))
			b.ResetTimer()
			var netBytes int64
			for i := 0; i < b.N; i++ {
				cnts := make([]sim.Counters, p)
				err := cluster.Run(p, func(pr *cluster.Proc) error {
					rank := pr.Rank()
					local := pools[rank].Get(n, z)
					record.Fill(local, record.Uniform{Seed: uint64(i)}, int64(rank)*int64(n))
					out, err := mk(rank).Sort(pr, &cnts[rank], 0, local)
					pools[rank].Put(out)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
				netBytes = 0
				for _, c := range cnts {
					if c.NetBytes > netBytes {
						netBytes = c.NetBytes
					}
				}
			}
			b.ReportMetric(float64(netBytes), "net-B/proc")
		})
	}
}

// BenchmarkE7BufferSweep is the buffer-size effect: same problem, varying
// column buffer (experiment E7).
func BenchmarkE7BufferSweep(b *testing.B) {
	const n = 1 << 16
	for _, mem := range []int{1 << 11, 1 << 12, 1 << 13, 1 << 14} {
		b.Run(fmt.Sprintf("mem=%d", mem), func(b *testing.B) {
			benchSort(b, Threaded, n, 4, mem, 16)
		})
	}
}

// BenchmarkE10PassAblation compares the 3-pass threaded program against
// the original 4-pass structure (experiment E10).
func BenchmarkE10PassAblation(b *testing.B) {
	const n, p, mem = 1 << 16, 4, 1 << 12
	b.Run("threaded-3pass", func(b *testing.B) { benchSort(b, Threaded, n, p, mem, 16) })
	b.Run("threaded-4pass", func(b *testing.B) { benchSort(b, Threaded4, n, p, mem, 16) })
}

// BenchmarkE11Combined exercises the Section-6 future-work algorithm
// (experiment E11) next to plain M-columnsort.
func BenchmarkE11Combined(b *testing.B) {
	const p, mem = 4, 1 << 10
	r := int64(p * mem)
	b.Run("m-columnsort", func(b *testing.B) { benchSort(b, MColumn, r*16, p, mem, 16) })
	b.Run("combined", func(b *testing.B) { benchSort(b, Combined, r*16, p, mem, 16) })
}

// BenchmarkE11HybridGroupSweep runs hybrid group columnsort across group
// sizes on the same problem, exposing the Section-6 bound/communication
// trade-off at runtime (complementing internal/hybrid's analytic model).
func BenchmarkE11HybridGroupSweep(b *testing.B) {
	const n, p, mem, z = 4096, 8, 512, 16
	for _, g := range []int{2, 4} {
		b.Run(fmt.Sprintf("g=%d", g), func(b *testing.B) {
			s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
			if err != nil {
				b.Fatal(err)
			}
			var netBytes int64
			b.SetBytes(n * z)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: uint64(i)}, n), nil,
					WithHybridGroup(g))
				if err != nil {
					b.Fatal(err)
				}
				netBytes = res.TotalCounters().NetBytes
				res.Close()
			}
			b.ReportMetric(float64(netBytes), "net-B")
		})
	}
}

// BenchmarkE1PredictAtPaperScale times the full Figure-2 regeneration
// (closed-form counts + cost model at 4–32 GiB), which is how the numbers
// in EXPERIMENTS.md are produced.
func BenchmarkE1PredictAtPaperScale(b *testing.B) {
	cm := sim.Beowulf2003()
	for i := 0; i < b.N; i++ {
		pts := figure2.Grid()
		for k := range pts {
			if pts[k].Eligible {
				if err := figure2.Evaluate(&pts[k], cm); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// BenchmarkE3E4E9Bounds times the analytic bound computations behind the
// bounds tables and crossover analysis.
func BenchmarkE3E4E9Bounds(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bounds.Table([]int64{1 << 12, 1 << 16, 1 << 19, 1 << 22}, []int64{4, 8, 16})
		_ = bounds.CrossoverFormula(1<<35, 8)
		_ = bounds.MaxBytes(bounds.MColumnsort, 1<<23, 16, 64)
	}
}

// --- substrate micro-benchmarks -------------------------------------------

func BenchmarkLocalSort(b *testing.B) {
	for _, alg := range []sortalg.Algorithm{sortalg.Intro, sortalg.Radix, sortalg.Heap} {
		for _, z := range []int{16, 64} {
			b.Run(fmt.Sprintf("%v/z=%d", alg, z), func(b *testing.B) {
				const n = 1 << 15
				src := record.Make(n, z)
				dst := record.Make(n, z)
				record.Fill(src, record.Uniform{Seed: 1}, 0)
				var sc sortalg.Scratch // the pipeline's steady-state path
				b.SetBytes(int64(n) * int64(z))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sc.SortIntoAlg(dst, src, alg)
				}
			})
		}
	}
}

func BenchmarkMergeRuns(b *testing.B) {
	for _, k := range []int{2, 8, 64} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			const n = 1 << 15
			src := record.Make(n, 16)
			record.Fill(src, record.Uniform{Seed: 1}, 0)
			for i := 0; i < k; i++ {
				sortalg.Sort(src.Sub(i*n/k, (i+1)*n/k))
			}
			dst := record.Make(n, 16)
			runs := sortalg.ContiguousRuns(n, k)
			var sc sortalg.Scratch
			b.SetBytes(int64(n) * 16)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.MergeRunsInto(dst, src, runs)
			}
		})
	}
}

func BenchmarkChecksum(b *testing.B) {
	s := record.Make(1<<14, 64)
	record.Fill(s, record.Uniform{Seed: 1}, 0)
	b.SetBytes(int64(s.Len()) * 64)
	for i := 0; i < b.N; i++ {
		var c record.Checksum
		c.AddSlice(s)
	}
}

func BenchmarkAllToAll(b *testing.B) {
	const p, n, z = 8, 1 << 10, 64
	for i := 0; i < b.N; i++ {
		err := cluster.Run(p, func(pr *cluster.Proc) error {
			var cnt sim.Counters
			out := make([]record.Slice, p)
			for d := range out {
				out[d] = record.Make(n, z)
			}
			_, err := pr.AllToAll(&cnt, 0, out)
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileBacked runs a genuinely out-of-core sort per iteration.
func BenchmarkFileBacked(b *testing.B) {
	s, err := New(Config{Procs: 2, MemPerProc: 1 << 12, RecordSize: 64, Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	const n = (1 << 12) * 8
	b.SetBytes(n * 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: uint64(i)}, n), nil,
			WithAlgorithm(Threaded), WithPadding(PadNever))
		if err != nil {
			b.Fatal(err)
		}
		res.Close()
	}
}

// BenchmarkFigure2File is the file-backed counterpart of experiment E1 for
// the async I/O layer: ingest → threaded 3-pass sort → verify, end to end
// on FileDisk-backed stores, synchronous vs asynchronous. The "-modeled"
// variants impose the physical-disk service-time model (100 µs effective
// seek, 256 MiB/s per disk) below the async layer; on the bare variants the
// page cache makes file I/O nearly free, so they mostly measure wrapper
// overhead. The modeled pair is where prefetch and write-behind show up as
// wall clock: the serial ingest and verify scans engage the P disk arrays
// concurrently instead of one at a time.
func BenchmarkFigure2File(b *testing.B) {
	const p, mem, z = 4, 1 << 12, 64
	const n = int64(mem) * 16
	for _, mode := range []struct {
		name    string
		async   bool
		modeled bool
	}{
		{"sync", false, false},
		{"async", true, false},
		{"sync-modeled", false, true},
		{"async-modeled", true, true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{Procs: p, MemPerProc: mem, RecordSize: z,
				Dir: b.TempDir(), Async: mode.async}
			if mode.modeled {
				cfg.DiskSeekMicros = 100
				cfg.DiskMBps = 256
			}
			s, err := New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(n * z)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Sort(context.Background(), Generate(record.Uniform{Seed: uint64(i)}, n), nil,
					WithAlgorithm(Threaded), WithPadding(PadNever))
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Verify(); err != nil {
					b.Fatal(err)
				}
				res.Close()
			}
		})
	}
}

// BenchmarkMergeSortFile is the hierarchical path end to end: a file-backed
// input 3× the threaded single-run bound, sorted file-to-file as runs plus
// a loser-tree k-way merge, synchronous vs asynchronous (prefetch and
// write-behind on the stores, the run spills AND the merged output stream).
func BenchmarkMergeSortFile(b *testing.B) {
	const p, mem, z = 4, 1 << 10, 64
	probe, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		b.Fatal(err)
	}
	bound := probe.MaxRecords(Threaded)
	n := 3 * bound
	for _, mode := range []struct {
		name  string
		async bool
		gen   record.Generator
	}{
		{"sync", false, record.Uniform{Seed: 7}},
		{"async", true, record.Uniform{Seed: 7}},
		// Nearly-sorted input: replacement selection (the default) forms
		// one maximal run, so the "merge" collapses to a verified stream.
		{"async-nearly-sorted", true, record.NearlySorted{Seed: 7, Window: 64}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			in := filepath.Join(dir, "in.dat")
			raw := record.Make(int(n), z)
			record.Fill(raw, mode.gen, 0)
			if err := os.WriteFile(in, raw.Data, 0o644); err != nil {
				b.Fatal(err)
			}
			s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z,
				Dir: filepath.Join(dir, "scratch"), Async: mode.async})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(n * z)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out := filepath.Join(dir, "out.dat")
				res, err := s.Sort(context.Background(), FromFile(in), ToFile(out),
					WithAlgorithm(Threaded))
				if err != nil {
					b.Fatal(err)
				}
				if res.Merge == nil {
					b.Fatal("benchmark input did not take the hierarchical path")
				}
				res.Close()
				os.Remove(out)
			}
		})
	}
}

// BenchmarkRunFormation compares the two hierarchical run-formation
// strategies head to head on random and nearly-sorted input. Replacement
// selection forms ~2× longer runs than a fixed batch on random input —
// halving the merge fan-in pressure — and absorbs nearly-sorted input
// into a single run, collapsing the merge entirely. The formed run count
// is reported alongside the timings.
func BenchmarkRunFormation(b *testing.B) {
	const p, mem, z = 4, 1 << 10, 64
	probe, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		b.Fatal(err)
	}
	bound := probe.MaxRecords(Threaded)
	n := 3 * bound
	for _, bc := range []struct {
		name string
		form RunFormation
		gen  record.Generator
	}{
		{"replacement-select/uniform", ReplacementSelect, record.Uniform{Seed: 3}},
		{"fixed-batch/uniform", FixedBatch, record.Uniform{Seed: 3}},
		{"replacement-select/nearly-sorted", ReplacementSelect, record.NearlySorted{Seed: 3, Window: 64}},
		{"fixed-batch/nearly-sorted", FixedBatch, record.NearlySorted{Seed: 3, Window: 64}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
			if err != nil {
				b.Fatal(err)
			}
			var runs float64
			b.SetBytes(n * z)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := s.Sort(context.Background(), Generate(bc.gen, n), Discard(),
					WithAlgorithm(Threaded), WithRunFormation(bc.form))
				if err != nil {
					b.Fatal(err)
				}
				if res.Merge == nil {
					b.Fatal("benchmark input did not take the hierarchical path")
				}
				runs = float64(res.Merge.Runs)
				res.Close()
			}
			b.ReportMetric(runs, "runs")
		})
	}
}

// TestBenchmarkConfigsEligible guards the benchmark grid: every non-skipped
// configuration above must plan successfully so `go test -bench` exercises
// what it claims to.
func TestBenchmarkConfigsEligible(t *testing.T) {
	check := func(alg Algorithm, n int64, p, mem, z int) {
		t.Helper()
		s, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Plan(alg, n); err != nil {
			t.Errorf("%v n=%d p=%d mem=%d: %v", alg, n, p, mem, err)
		}
	}
	for _, mem := range []int{1 << 12, 1 << 13} {
		check(Threaded, int64(mem)*16, 4, mem, 64)
		check(Subblock, int64(mem)*16, 4, mem, 64)
		check(MColumn, int64(mem)*16, 4, mem, 64)
	}
	check(Combined, int64(4*(1<<10))*16, 4, 1<<10, 16)
}

// BenchmarkConcurrentJobs measures sort-as-a-service throughput: J
// concurrent file-backed hierarchical sorts (each 3× the single-run bound)
// sharing one Engine whose TotalMemory admits two jobs at a time, so the
// admission queue is part of the measured path. Bytes/op counts the total
// record bytes sorted across all J jobs.
func BenchmarkConcurrentJobs(b *testing.B) {
	const p, mem, z = 4, 1 << 10, 64
	probe, err := New(Config{Procs: p, MemPerProc: mem, RecordSize: z})
	if err != nil {
		b.Fatal(err)
	}
	bound := probe.MaxRecords(Threaded)
	n := 3 * bound
	ask := bound * z
	for _, jobs := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			dir := b.TempDir()
			inputs := make([]string, jobs)
			for j := range inputs {
				raw := record.Make(int(n), z)
				record.Fill(raw, record.Uniform{Seed: uint64(7 + j)}, 0)
				inputs[j] = filepath.Join(dir, fmt.Sprintf("in%d.dat", j))
				if err := os.WriteFile(inputs[j], raw.Data, 0o644); err != nil {
					b.Fatal(err)
				}
			}
			e, err := NewEngine(EngineConfig{
				Config: Config{Procs: p, MemPerProc: mem, RecordSize: z,
					Dir: filepath.Join(dir, "scratch"), Async: true},
				TotalMemory: 2 * ask,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			b.SetBytes(int64(jobs) * n * z)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for j := 0; j < jobs; j++ {
					j := j
					wg.Add(1)
					go func() {
						defer wg.Done()
						out := filepath.Join(dir, fmt.Sprintf("out%d.dat", j))
						res, err := e.Sort(context.Background(), FromFile(inputs[j]), ToFile(out),
							WithMaxMemory(ask))
						if err != nil {
							b.Error(err)
							return
						}
						if res.Merge == nil {
							b.Error("job did not take the hierarchical path")
						}
						res.Close()
						os.Remove(out)
					}()
				}
				wg.Wait()
			}
		})
	}
}
