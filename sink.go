package colsort

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"colsort/internal/record"
)

// A Sink receives a Sort's output: the real records (padding excluded), in
// global column-major sorted order, with any KeySpec normalization already
// undone. Single-run sorts verify the output (sortedness + multiset)
// BEFORE opening the sink, so a failed sort never emits a plausible-looking
// result. Hierarchical (above-bound) sorts necessarily verify in-stream —
// every run is verified before merging, the merged order is checked record
// by record, and the multiset at end of stream — so bytes may reach the
// sink before a late failure is detected: when Sort returns an error, the
// sink's contents must be discarded. Implementations should therefore not
// publish or commit their output before Sort itself returns nil.
type Sink interface {
	// Open prepares the sink for records of recSize bytes. Sort writes the
	// whole output and then closes the writer exactly once.
	Open(recSize int) (w RecordWriter, err error)
}

// RecordWriter consumes sorted records in order.
type RecordWriter interface {
	// Write appends the records of recs. The slice's backing memory is
	// reused after Write returns; implementations must copy what they keep.
	Write(recs record.Slice) error
	// Close flushes and releases the writer.
	Close() error
}

// ToFile writes the sorted records into a newly created file at path.
func ToFile(path string) Sink {
	return &fileSink{path: path}
}

type fileSink struct{ path string }

func (s *fileSink) Open(int) (RecordWriter, error) {
	f, err := os.Create(s.path)
	if err != nil {
		return nil, fmt.Errorf("colsort: %w", err)
	}
	return &fileWriter{path: s.path, f: f, w: bufio.NewWriterSize(f, 1<<20)}, nil
}

type fileWriter struct {
	path string
	f    *os.File
	w    *bufio.Writer
}

func (fw *fileWriter) Write(recs record.Slice) error {
	if _, err := fw.w.Write(recs.Data); err != nil {
		return fmt.Errorf("colsort: write %s: %w", fw.path, err)
	}
	return nil
}

func (fw *fileWriter) Close() error {
	if err := fw.w.Flush(); err != nil {
		fw.f.Close()
		return fmt.Errorf("colsort: write %s: %w", fw.path, err)
	}
	if err := fw.f.Close(); err != nil {
		return fmt.Errorf("colsort: close %s: %w", fw.path, err)
	}
	return nil
}

// ToWriter streams the sorted records into w, which is not closed.
func ToWriter(w io.Writer) Sink {
	return &writerSink{w: w}
}

type writerSink struct{ w io.Writer }

func (s *writerSink) Open(int) (RecordWriter, error) {
	if s.w == nil {
		return nil, fmt.Errorf("colsort: nil writer")
	}
	return &writerWriter{w: s.w}, nil
}

type writerWriter struct{ w io.Writer }

func (ww *writerWriter) Write(recs record.Slice) error {
	if _, err := ww.w.Write(recs.Data); err != nil {
		return fmt.Errorf("colsort: write output: %w", err)
	}
	return nil
}

func (ww *writerWriter) Close() error { return nil }

// Discard drains and drops the sorted output. Useful to exercise the full
// egress path (verification, decode, streaming) when only the Result's
// counters matter.
func Discard() Sink { return discardSink{} }

type discardSink struct{}

func (discardSink) Open(int) (RecordWriter, error) { return discardWriter{}, nil }

type discardWriter struct{}

func (discardWriter) Write(record.Slice) error { return nil }
func (discardWriter) Close() error             { return nil }
